// Figures 13-16: multilateration on the 46-node grass grid.
//
//   Fig 13/14 -- real (field) measurements only, 13 random anchors: most
//     nodes lack links to >= 3 anchors, so only a small fraction localize
//     (paper: 7 of 33, average 1.47 anchors per node, 0.653 m error for the
//     localized few).
//   Fig 15/16 -- the same data augmented with synthetic distances
//     (N(0, 0.33 m)): anchors per node rises (paper: 3.84) and ~80% localize,
//     but gradient-descent local minima and underestimated edges leave a few
//     badly localized nodes (paper: 3.524 m average, 0.9 m without 3 nodes).
//
// Migration exemplar: this bench used to hand-roll its trial loop, seeding,
// and aggregation; it now declares the experiment as a SweepSpec -- the
// acoustic grass campaign swept over the augmentation axis -- and lets the
// CampaignRunner execute and aggregate it. Where the original ran the paper's
// single draw, the runner repeats each cell over independent deployments and
// campaigns, so the figures' "shape" claims rest on averages instead of one
// lucky seed.
#include <cstdio>

#include "bench_util.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 13-16 -- multilateration on the 46-node grass grid");

  runner::SweepSpec spec;
  spec.name = "fig13_16";
  spec.seed = 0xF16'13;
  spec.trials_per_cell = 3;
  // Base config: the real acoustic grass campaign (Section 3.6), with the
  // paper's synthetic model (N(0, 0.33 m), 22 m cutoff) for augmentation.
  spec.base.source = pipeline::MeasurementSource::kAcousticRanging;
  spec.base.campaign = sim::grass_campaign_config(/*rounds=*/3);
  spec.axes.scenarios = {"grass_grid"};
  spec.axes.solvers = {pipeline::Solver::kMultilateration};
  spec.axes.anchor_counts = {13};
  spec.axes.augment = {false, true};  // Fig 13/14 vs Fig 15/16

  const runner::CampaignRunner campaign_runner;
  const runner::CampaignResult result = campaign_runner.run(spec);

  const eval::CellAggregate& sparse = result.cells[0].aggregate;     // augment off
  const eval::CellAggregate& augmented = result.cells[1].aggregate;  // augment on

  std::printf("%zu trials per cell over independent campaigns (%u threads, %.2f s)\n",
              spec.trials_per_cell, result.threads_used, result.wall_time_s);
  std::printf("field-measured pairs per campaign: %.0f (paper: 247)\n\n",
              sparse.mean_measured_edges);

  // --- Fig 13/14: sparse field data ---
  bench::print_compare("Fig 14 placement rate (sparse)", 7.0 / 33.0,
                       sparse.mean_placement_rate, "");
  bench::print_compare("Fig 14 avg error (localized)", 0.653, sparse.mean_error_m, "m");
  bench::print_compare("Fig 14 median trial error", 0.653, sparse.median_error_m, "m");

  // --- Fig 15/16: augmented with synthetic distances ---
  std::printf("\naugmentation: +%.0f synthetic pairs per campaign (N(0, 0.33 m), 22 m cutoff)\n",
              augmented.mean_augmented_edges);
  bench::print_compare("Fig 16 placement rate", 28.0 / 33.0, augmented.mean_placement_rate, "");
  bench::print_compare("Fig 16 avg error", 3.524, augmented.mean_error_m, "m");
  bench::print_compare("Fig 16 p95 trial error", 3.524, augmented.p95_error_m, "m");

  std::puts(
      "\npaper shape: sparse data localizes only a minority well; augmentation\n"
      "localizes most nodes but a few badly-placed ones dominate the average\n"
      "(unlocalized nodes cluster at the grid periphery, where anchors are scarce).\n"
      "\nnote: the emulated campaign yields denser anchor connectivity than the\n"
      "paper's field day (~2.9 vs 1.47 anchors/node), so more nodes clear the\n"
      "3-anchor bar here -- many with marginal geometry, which inflates the\n"
      "sparse-cell error average relative to the paper's 7 well-anchored nodes.");
  return 0;
}
