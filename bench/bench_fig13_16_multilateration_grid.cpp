// Figures 13-16: multilateration on the 46-node grass grid.
//
//   Fig 13/14 -- real (field) measurements only, 13 random anchors: most
//     nodes lack links to >= 3 anchors, so only a small fraction localize
//     (paper: 7 of 33, average 1.47 anchors per node, 0.653 m error for the
//     localized few).
//   Fig 15/16 -- the same data augmented with synthetic distances
//     (N(0, 0.33 m)): anchors per node rises (paper: 3.84) and ~80% localize,
//     but gradient-descent local minima and underestimated edges leave a few
//     badly localized nodes (paper: 3.524 m average, 0.9 m without 3 nodes).
#include <cstdio>

#include "bench_util.hpp"
#include "core/multilateration.hpp"
#include "eval/metrics.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 13-16 -- multilateration on the 46-node grass grid");
  auto scenario = sim::grass_grid_scenario(0xF16'13, /*rounds=*/3);
  sim::assign_random_anchors(scenario.deployment, 13, 0xA'13);
  const auto& deployment = scenario.deployment;
  std::printf("nodes: %zu   anchors: %zu   field-measured pairs: %zu (paper: 247)\n",
              deployment.size(), deployment.anchors.size(), scenario.measurements.edge_count());

  math::Rng rng(0xF16'14);
  core::MultilaterationOptions options;

  // --- Fig 13/14: sparse field data ---
  bench::print_compare("anchors per node (sparse)", 1.47,
                       core::average_anchors_per_node(deployment, scenario.measurements), "");
  const auto sparse = core::localize_by_multilateration(deployment, scenario.measurements,
                                                        options, rng);
  const auto sparse_rep = eval::evaluate_localization(sparse.positions, deployment.positions,
                                                      false, deployment.anchors);
  std::printf("Fig 14: localized %zu / %zu non-anchors (paper: 7 / 33)\n", sparse_rep.localized,
              sparse_rep.total_nodes);
  if (sparse_rep.localized > 0) {
    bench::print_compare("Fig 14 avg error (localized)", 0.653, sparse_rep.average_error_m, "m");
  }

  // --- Fig 15/16: augmented with synthetic distances ---
  auto augmented = scenario.measurements;
  math::Rng aug_rng(0xF16'15);
  const std::size_t added =
      sim::augment_with_gaussian(augmented, deployment, {}, aug_rng, /*max_added=*/0);
  std::printf("\naugmentation: +%zu synthetic pairs (N(0, 0.33 m), 22 m cutoff)\n", added);
  bench::print_compare("anchors per node (augmented)", 3.84,
                       core::average_anchors_per_node(deployment, augmented), "");
  const auto dense = core::localize_by_multilateration(deployment, augmented, options, rng);
  const auto dense_rep = eval::evaluate_localization(dense.positions, deployment.positions,
                                                     false, deployment.anchors);
  std::printf("Fig 16: localized %zu / %zu non-anchors (paper: 28 / 33, ~80%%)\n",
              dense_rep.localized, dense_rep.total_nodes);
  bench::print_compare("Fig 16 avg error", 3.524, dense_rep.average_error_m, "m");
  bench::print_compare("Fig 16 avg error w/o worst 3", 0.9, dense_rep.average_without_worst(3),
                       "m");
  std::puts(
      "\npaper shape: sparse data localizes only a small minority; augmentation\n"
      "localizes most nodes but a few badly-placed ones dominate the average\n"
      "(unlocalized nodes cluster at the grid periphery, where anchors are scarce).");
  return 0;
}
