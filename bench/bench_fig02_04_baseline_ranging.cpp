// Figures 2 and 4: errors of the baseline acoustic ranging service on a
// 60-node urban deployment (distances up to 30 m), raw and after median
// filtering of up to five measurements.
//
// Paper-reported shape: many measurements with >1 m errors; the large
// under-estimates come from echoes/noise firing the tone detector early, the
// over-estimates from missed onsets. Median filtering collapses most of the
// uncorrelated outliers.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "math/stats.hpp"
#include "sim/deployments.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner(
      "Figure 2 / Figure 4 -- baseline ranging errors, 60-node urban site");

  math::Rng rng(0xF16'02);
  // 60 nodes over an urban site; pairs recorded out to ~30 m.
  const auto deployment = sim::random_uniform(60, 70.0, 55.0, 6.0, rng);

  sim::FieldExperimentConfig config = sim::urban_baseline_campaign_config(/*rounds=*/5);
  config.ranging.max_window_range_m = 35.0;
  config.simulate_within_m = 32.0;
  config.filter.kind = ranging::FilterKind::kMedian;
  config.filter.max_samples = 5;  // "median filtering of up to five measurements"

  const auto data = sim::run_field_experiment(deployment, config, rng);

  // --- Figure 2: raw single-measurement errors ---
  const auto raw = eval::summarize_ranging_errors(data.raw_errors());
  std::printf("raw measurements: %zu over %zu directed pairs\n", raw.count,
              data.raw.directed_pair_count());
  std::printf("  mean error          %8.3f m\n", raw.mean_m);
  std::printf("  median |error|      %8.3f m\n", raw.median_abs_m);
  std::printf("  within +/-1 m       %7.1f %%\n", 100.0 * raw.within_1m_fraction);
  std::printf("  underestimates >1m  %zu\n", raw.underestimates_beyond_1m);
  std::printf("  overestimates  >1m  %zu\n", raw.overestimates_beyond_1m);
  std::printf("  max |error|         %8.2f m\n", raw.max_abs_m);
  std::puts("paper (Fig 2): many >1 m errors; large underestimates from echo/noise pickup.");

  // Error vs distance series (the Fig 2 scatter, summarized by distance bin).
  eval::Table table({"distance bin", "samples", "mean err", "|err|>1m", "worst"});
  for (double lo = 0.0; lo < 30.0; lo += 5.0) {
    std::vector<double> errors;
    double worst = 0.0;
    for (const auto& s : data.samples) {
      if (s.true_distance_m < lo || s.true_distance_m >= lo + 5.0) continue;
      const double e = s.measured_m - s.true_distance_m;
      errors.push_back(e);
      if (std::abs(e) > std::abs(worst)) worst = e;
    }
    std::size_t big = 0;
    for (double e : errors) {
      if (std::abs(e) > 1.0) ++big;
    }
    char bin[32];
    std::snprintf(bin, sizeof bin, "%2.0f-%2.0f m", lo, lo + 5.0);
    table.add_row({bin, std::to_string(errors.size()), eval::fmt(math::mean(errors)),
                   std::to_string(big), eval::fmt(worst, 2)});
  }
  std::puts("");
  std::fputs(table.to_string().c_str(), stdout);

  // --- Figure 4: median filtering of up to five measurements ---
  std::vector<double> filtered_errors;
  for (const auto& pair : data.raw.symmetric_estimates(config.filter, 1e9)) {
    const double true_d =
        math::distance(deployment.positions[pair.a], deployment.positions[pair.b]);
    filtered_errors.push_back(pair.distance_m - true_d);
  }
  const auto filtered = eval::summarize_ranging_errors(filtered_errors);
  std::puts("\nFigure 4 -- after median filtering (<=5 measurements per direction):");
  std::printf("  pairs               %zu\n", filtered.count);
  std::printf("  median |error|      %8.3f m\n", filtered.median_abs_m);
  std::printf("  errors beyond 1 m   %zu (raw had %zu)\n",
              filtered.underestimates_beyond_1m + filtered.overestimates_beyond_1m,
              raw.underestimates_beyond_1m + raw.overestimates_beyond_1m);
  std::printf("  max |error|         %8.2f m (raw %.2f m)\n", filtered.max_abs_m, raw.max_abs_m);
  std::puts("paper (Fig 4): outlier count collapses relative to Figure 2.");
  return 0;
}
