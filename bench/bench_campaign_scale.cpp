// Measurement acquisition at production scale: grid-culled pair enumeration
// + counter-based RNG substreams vs the seed's O(n^2) front end.
//
// Three claims are measured and gated:
//   1. Pair-set equivalence. The spatial-grid front end must find exactly
//      the dense scan's in-range pair set at every scale point -- the delta
//      (pairs found by one path and not the other) must be 0. The campaign
//      outputs themselves are byte-equal (locked by test_campaign_scale);
//      this bench re-checks the pair sets standalone.
//   2. Front-end speedup. The acquisition front end -- pair enumeration plus
//      per-link shadowing setup, everything the campaign does besides running
//      the acoustic physics -- is timed via rounds=0 campaigns: the dense
//      reference path pays the seed's n(n-1)/2 distance scan, n^2-entry
//      shadowing matrix, and 500k substream draws at n=1000; the grid path
//      pays O(n + in-range pairs). Gate: >= 10x at n = 1000.
//   3. End-to-end campaign speedup. Full campaigns (units, enumeration,
//      shadowing, every chirp sequence, filtering) at n in {100, 500, 1000}.
//      At survey density (uniform_n, ~9 in-range neighbors) the acoustic
//      physics both paths share dominates and bounds the e2e gain near 1x --
//      reported honestly as the Amdahl floor. The regime the motivation
//      names ("almost all pairs rejected by the cutoff") is the wide-area
//      point: 1000 nodes across a ~8.5 km square ranged by the Section 3.1
//      urban baseline service, where acquisition overhead dominates and the
//      e2e campaign speedup is gated at >= 10x single-threaded.
//
// The allocation note: global new/delete are counted, and the grid
// campaign's steady-state allocations per measurement attempt are reported --
// the hot loop itself allocates nothing per pair (scratch reuse + reserved
// aggregation); what remains is result storage (the raw MeasurementTable's
// per-directed-pair nodes, the filter's per-pair scratch), i.e.
// O(successful estimates), not O(n^2).
//
// Results are printed and written as JSON (default BENCH_campaign.json, or
// argv[1]) so CI can archive the perf trajectory alongside BENCH_lss.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "eval/aggregate.hpp"
#include "math/grid_pairs.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

// --- Global allocation counter (this binary only). ---
namespace {
std::atomic<std::size_t> g_alloc_count{0};
bool g_count_allocs = false;
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs) g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    const double dt = now_s() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

volatile std::size_t g_sink = 0;  // keeps campaign results alive in timed loops

/// In-range unordered pairs by the dense reference scan (the campaign's
/// inclusive d <= cutoff predicate).
std::vector<std::pair<std::uint32_t, std::uint32_t>> dense_pair_set(
    const core::Deployment& d, double cutoff) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t i = 0; i + 1 < d.size(); ++i) {
    for (std::uint32_t j = i + 1; j < d.size(); ++j) {
      if (math::distance(d.positions[i], d.positions[j]) <= cutoff) out.emplace_back(i, j);
    }
  }
  return out;
}

/// Symmetric difference size between the dense pair set and the grid
/// enumerator's -- the "pair-set delta" the gates pin at 0.
std::size_t pair_set_delta(const core::Deployment& d, double cutoff,
                           std::size_t* in_range = nullptr) {
  const auto dense = dense_pair_set(d, cutoff);
  math::GridPairEnumerator grid;
  grid.build(d.positions.data(), d.size(), cutoff, /*include_equal=*/true);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> grid_set;
  grid_set.reserve(grid.pair_count());
  grid.for_each_pair([&](std::size_t i, std::size_t j, double) {
    grid_set.emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
  });
  if (in_range != nullptr) *in_range = dense.size();
  // Both are (i, j)-lexicographic; count mismatches by merge.
  std::size_t delta = 0, a = 0, b = 0;
  while (a < dense.size() || b < grid_set.size()) {
    if (a < dense.size() && b < grid_set.size() && dense[a] == grid_set[b]) {
      ++a;
      ++b;
    } else if (b >= grid_set.size() || (a < dense.size() && dense[a] < grid_set[b])) {
      ++delta;
      ++a;
    } else {
      ++delta;
      ++b;
    }
  }
  return delta;
}

struct ScalePoint {
  std::size_t n = 0;
  std::size_t in_range_pairs = 0;
  std::size_t pair_delta = 0;
  double front_dense_ms = 0.0;
  double front_grid_ms = 0.0;
  double front_speedup = 0.0;
  double e2e_dense_s = 0.0;
  double e2e_grid_s = 0.0;
  double e2e_speedup = 0.0;
  std::size_t raw_estimates = 0;
};

ScalePoint run_scale_point(std::size_t n) {
  ScalePoint point;
  point.n = n;
  math::Rng deploy_rng(0xAC5 + n);
  sim::ScenarioParams params;
  params.node_count = n;
  const core::Deployment deployment = sim::build_scenario("uniform_n", params, deploy_rng);
  const sim::FieldExperimentConfig config = sim::grass_campaign_config();

  point.pair_delta = pair_set_delta(deployment, config.simulate_within_m, &point.in_range_pairs);

  const auto campaign_time = [&](bool dense, int rounds, int reps) {
    sim::FieldExperimentConfig c = config;
    c.dense_pair_scan = dense;
    c.rounds = rounds;
    return best_of(reps, [&] {
      math::Rng rng(7);
      const auto data = sim::run_field_experiment(deployment, c, rng);
      g_sink = data.samples.size() + data.skipped_pairs;
    });
  };

  // Front end alone: rounds=0 runs everything except the acoustic physics.
  point.front_dense_ms = campaign_time(true, /*rounds=*/0, /*reps=*/5) * 1e3;
  point.front_grid_ms = campaign_time(false, /*rounds=*/0, /*reps=*/5) * 1e3;
  point.front_speedup = point.front_dense_ms / point.front_grid_ms;

  // Full campaign at survey density: the shared physics is the Amdahl floor.
  const int reps = 2;
  point.e2e_dense_s = campaign_time(true, config.rounds, reps);
  point.e2e_grid_s = campaign_time(false, config.rounds, reps);
  point.e2e_speedup = point.e2e_dense_s / point.e2e_grid_s;
  {
    sim::FieldExperimentConfig c = config;
    math::Rng rng(7);
    point.raw_estimates = sim::run_field_experiment(deployment, c, rng).samples.size();
  }
  return point;
}

/// Byte-identity of two campaign outputs: every raw estimate, bitwise.
bool samples_identical(const sim::FieldExperimentData& a, const sim::FieldExperimentData& b) {
  if (a.samples.size() != b.samples.size()) return false;
  if (a.filtered.size() != b.filtered.size()) return false;
  if (a.skipped_pairs != b.skipped_pairs) return false;
  return a.samples.empty() ||
         std::memcmp(a.samples.data(), b.samples.data(),
                     a.samples.size() * sizeof(sim::RangingSample)) == 0;
}

struct SurveyDspPoint {
  double scalar_1t_s = 0.0;   ///< per-sample reference path, 1 thread
  double block_1t_s = 0.0;    ///< block kernels, 1 thread
  double block_mt_s = 0.0;    ///< block kernels, `threads` workers
  std::size_t threads = 1;
  double speedup_1t = 0.0;
  double speedup_mt = 0.0;
  bool byte_identical = false;
};

/// The tentpole gate: survey-density e2e at n = 1000 (grass campaign, grid
/// front end), per-sample reference vs the block-DSP measure path. The
/// threaded block run is the headline -- the acoustic physics used to be a
/// serial per-sample wall; block kernels cut the single-thread cost and the
/// turn-sharded campaign takes the rest, with byte-identical output.
SurveyDspPoint run_survey_dsp_point() {
  SurveyDspPoint point;
  math::Rng deploy_rng(0xAC5 + 1000);
  sim::ScenarioParams params;
  params.node_count = 1000;
  const core::Deployment deployment = sim::build_scenario("uniform_n", params, deploy_rng);
  const sim::FieldExperimentConfig base = sim::grass_campaign_config();

  const auto run = [&](bool block_dsp, int threads) {
    sim::FieldExperimentConfig c = base;
    c.ranging.block_dsp = block_dsp;
    c.threads = threads;
    math::Rng rng(7);
    return sim::run_field_experiment(deployment, c, rng);
  };
  const auto time_run = [&](bool block_dsp, int threads, int reps) {
    return best_of(reps, [&] { g_sink = run(block_dsp, threads).samples.size(); });
  };

  const unsigned hw = std::thread::hardware_concurrency();
  point.threads = std::min<std::size_t>(8, hw > 0 ? hw : 1);

  point.scalar_1t_s = time_run(false, 1, 2);
  point.block_1t_s = time_run(true, 1, 2);
  point.block_mt_s = time_run(true, static_cast<int>(point.threads), 2);
  point.speedup_1t = point.scalar_1t_s / point.block_1t_s;
  point.speedup_mt = point.scalar_1t_s / point.block_mt_s;

  const sim::FieldExperimentData ref = run(false, 1);
  const sim::FieldExperimentData blk = run(true, 1);
  const sim::FieldExperimentData blk_mt = run(true, static_cast<int>(point.threads));
  point.byte_identical = samples_identical(ref, blk) && samples_identical(ref, blk_mt);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_campaign.json";
  bench::print_banner(
      "Measurement acquisition: grid-culled pair enumeration vs dense O(n^2) front end");

  std::vector<ScalePoint> points;
  for (const std::size_t n : {100u, 500u, 1000u}) points.push_back(run_scale_point(n));

  std::puts("survey density (uniform_n, grass campaign, 3 rounds)");
  std::puts(
      "      n   in-range   delta   front dense   front grid   front-speedup   e2e dense   "
      "e2e grid   e2e-speedup");
  for (const ScalePoint& p : points) {
    std::printf("  %5zu  %9zu  %6zu  %9.2f ms  %8.2f ms  %12.1fx  %8.2f s  %7.2f s  %10.2fx\n",
                p.n, p.in_range_pairs, p.pair_delta, p.front_dense_ms, p.front_grid_ms,
                p.front_speedup, p.e2e_dense_s, p.e2e_grid_s, p.e2e_speedup);
  }
  std::puts(
      "  (front end = rounds=0 campaign: enumeration + shadowing setup, the stage this\n"
      "   rewrite replaced; at survey density the full campaign is dominated by the\n"
      "   acoustic physics both paths share, so its e2e speedup sits near the Amdahl\n"
      "   floor of ~1x -- the honest number for dense fields)");

  // --- The motivation's regime: a wide-area survey where almost every pair
  // is beyond the cutoff and acquisition overhead dominates. 1000 nodes
  // across ~8.5 km, Section 3.1 urban baseline service. ---
  core::Deployment wide;
  {
    math::Rng rng(0xA11CE);
    const double side = 8500.0;
    for (int i = 0; i < 1000; ++i) {
      wide.positions.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
  }
  const sim::FieldExperimentConfig wide_config = sim::urban_baseline_campaign_config();
  std::size_t wide_in_range = 0;
  const std::size_t wide_delta =
      pair_set_delta(wide, wide_config.simulate_within_m, &wide_in_range);
  const auto wide_time = [&](bool dense) {
    sim::FieldExperimentConfig c = wide_config;
    c.dense_pair_scan = dense;
    return best_of(3, [&] {
      math::Rng rng(7);
      const auto data = sim::run_field_experiment(wide, c, rng);
      g_sink = data.samples.size() + data.skipped_pairs;
    });
  };
  const double wide_dense_s = wide_time(true);
  const double wide_grid_s = wide_time(false);
  const double wide_speedup = wide_dense_s / wide_grid_s;
  std::printf(
      "\nwide-area e2e campaign, n = 1000 over 8.5 km square (urban baseline service,\n"
      "%zu of 499500 pairs in range, delta %zu)\n",
      wide_in_range, wide_delta);
  std::printf("  dense front end   %8.2f ms\n", wide_dense_s * 1e3);
  std::printf("  spatial grid      %8.2f ms\n", wide_grid_s * 1e3);
  std::printf("  e2e speedup       %8.1fx  (single-threaded; gate >= 10x)\n", wide_speedup);

  // --- Allocation note: steady-state allocations per measurement attempt in
  // the grid campaign's hot loop (n = 500 survey field). ---
  double allocs_per_attempt = 0.0;
  std::size_t campaign_allocs = 0;
  {
    math::Rng deploy_rng(0xAC5 + 500);
    sim::ScenarioParams params;
    params.node_count = 500;
    const core::Deployment deployment = sim::build_scenario("uniform_n", params, deploy_rng);
    const sim::FieldExperimentConfig config = sim::grass_campaign_config();
    std::size_t attempts = 0;
    {
      math::GridPairEnumerator pairs;
      pairs.build(deployment.positions.data(), deployment.size(), config.simulate_within_m,
                  true);
      attempts = static_cast<std::size_t>(config.rounds) * 2 * pairs.pair_count();
    }
    math::Rng rng(7);
    g_alloc_count.store(0);
    g_count_allocs = true;
    const auto data = sim::run_field_experiment(deployment, config, rng);
    g_count_allocs = false;
    campaign_allocs = g_alloc_count.load();
    g_sink = data.samples.size();
    allocs_per_attempt =
        static_cast<double>(campaign_allocs) / static_cast<double>(attempts);
    std::printf(
        "\nallocation audit, n = 500 grid campaign: %zu allocations / %zu measurement\n"
        "attempts = %.2f per attempt (measure() itself allocates none -- scratch reuse;\n"
        "the remainder is the raw MeasurementTable's per-directed-pair storage, the\n"
        "statistical filter's per-pair scratch, and the reserved aggregation buffers --\n"
        "all O(successful estimates), none O(n^2))\n",
        campaign_allocs, attempts, allocs_per_attempt);
  }

  // --- Block-DSP survey gate: the per-sample measure path vs the block
  // kernel path at full survey density, end to end. Byte-identity across all
  // three runs is part of the gate -- the speedup only counts if the output
  // is the same output. ---
  const SurveyDspPoint dsp = run_survey_dsp_point();
  std::printf(
      "\nblock-DSP survey e2e, n = 1000 grass campaign (grid front end)\n"
      "  per-sample reference, 1 thread   %8.2f s\n"
      "  block kernels,        1 thread   %8.2f s  (%.2fx)\n"
      "  block kernels,      %2zu threads   %8.2f s  (%.2fx; gate >= 5x)\n"
      "  byte-identical samples across all three: %s\n",
      dsp.scalar_1t_s, dsp.block_1t_s, dsp.speedup_1t, dsp.threads, dsp.block_mt_s,
      dsp.speedup_mt, dsp.byte_identical ? "yes" : "NO");

  // --- JSON record ---
  const auto v = [](double x) { return resloc::eval::format_value(x); };
  std::string json = "{\n";
  json += "  \"bench\": \"bench_campaign_scale\",\n";
  json += "  \"scale_points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"n\": " + std::to_string(p.n) +
            ", \"in_range_pairs\": " + std::to_string(p.in_range_pairs) +
            ", \"pair_set_delta\": " + std::to_string(p.pair_delta) +
            ", \"front_end_dense_ms\": " + v(p.front_dense_ms) +
            ", \"front_end_grid_ms\": " + v(p.front_grid_ms) +
            ", \"front_end_speedup\": " + v(p.front_speedup) +
            ", \"e2e_dense_s\": " + v(p.e2e_dense_s) +
            ", \"e2e_grid_s\": " + v(p.e2e_grid_s) +
            ", \"e2e_speedup_amdahl_bounded\": " + v(p.e2e_speedup) +
            ", \"raw_estimates\": " + std::to_string(p.raw_estimates) + "}";
  }
  json += "\n  ],\n";
  json += "  \"wide_area_e2e\": {\"n\": 1000, \"side_m\": 8500, \"in_range_pairs\": " +
          std::to_string(wide_in_range) +
          ", \"pair_set_delta\": " + std::to_string(wide_delta) +
          ", \"dense_s\": " + v(wide_dense_s) + ", \"grid_s\": " + v(wide_grid_s) +
          ", \"e2e_speedup\": " + v(wide_speedup) + "},\n";
  json += "  \"survey_dsp\": {\"n\": 1000, \"scalar_1t_s\": " + v(dsp.scalar_1t_s) +
          ", \"block_1t_s\": " + v(dsp.block_1t_s) +
          ", \"block_threads\": " + std::to_string(dsp.threads) +
          ", \"block_mt_s\": " + v(dsp.block_mt_s) +
          ", \"speedup_block_1t\": " + v(dsp.speedup_1t) +
          ", \"speedup_block_mt\": " + v(dsp.speedup_mt) +
          ", \"byte_identical\": " + (dsp.byte_identical ? "true" : "false") + "},\n";
  json += "  \"e2e_speedup_at_1000\": " + v(wide_speedup) + ",\n";
  json += "  \"front_end_speedup_at_1000\": " + v(points.back().front_speedup) + ",\n";
  std::size_t max_delta = wide_delta;
  for (const ScalePoint& p : points) max_delta = std::max(max_delta, p.pair_delta);
  json += "  \"max_pair_set_delta\": " + std::to_string(max_delta) + ",\n";
  json += "  \"campaign_allocs_n500\": " + std::to_string(campaign_allocs) + ",\n";
  json += "  \"campaign_allocs_per_attempt\": " + v(allocs_per_attempt) + "\n";
  json += "}\n";
  if (!resloc::eval::write_text_file(json_path, json)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nbench record: %s\n", json_path.c_str());

  const bool ok = max_delta == 0 && points.back().front_speedup >= 10.0 &&
                  wide_speedup >= 10.0 && dsp.byte_identical && dsp.speedup_mt >= 5.0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: pair-set delta %zu (need 0), front-end speedup@1000 %.1fx, "
                 "wide-area e2e speedup@1000 %.1fx (both need >= 10x), block-DSP "
                 "survey speedup %.2fx (need >= 5x), byte_identical=%s\n",
                 max_delta, points.back().front_speedup, wide_speedup, dsp.speedup_mt,
                 dsp.byte_identical ? "true" : "false");
  }
  return ok ? 0 : 1;
}
