// Ablation A5: classical MDS (with shortest-path completion, MDS-MAP style)
// versus LSS on dense and sparse measurement sets.
//
// The paper's motivation for LSS (Section 4.2): classical MDS "requires that
// distance measurements between all pairs of nodes be available"; LSS
// tolerates sparse subsets. Shortest-path completion rescues MDS on connected
// sparse graphs but inflates geodesic distances, distorting the layout.
#include <cstdio>

#include "bench_util.hpp"
#include "core/classical_mds.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Ablation A5 -- classical MDS (MDS-MAP) vs LSS across sparsity");
  const auto town = sim::town_blocks_59();
  math::Rng noise_rng(7);
  const auto full = sim::gaussian_measurements(town, {}, noise_rng);

  eval::Table table({"edges", "MDS-MAP avg err", "MDS planarity", "LSS avg err"});
  for (double keep_fraction : {1.0, 0.75, 0.5, 0.35}) {
    math::Rng sub_rng(0xAB'51);
    const auto measurements = sim::subsample_edges(
        full, static_cast<std::size_t>(keep_fraction * static_cast<double>(full.edge_count())),
        sub_rng);

    const auto mds = core::mds_map(measurements);
    const auto mds_rep =
        eval::evaluate_localization(mds->positions, town.positions, true);

    core::LssOptions options;
    options.min_spacing_m = 9.0;
    options.gd.max_iterations = 5000;
    options.independent_inits = 16;
    options.target_stress_per_edge = 0.75;
    math::Rng lss_rng(0xAB'52);
    const auto lss = core::localize_lss(measurements, options, lss_rng);
    const auto lss_rep = eval::evaluate_localization(lss.positions, town.positions, true);

    table.add_row({std::to_string(measurements.edge_count()),
                   eval::fmt(mds_rep.average_error_m, 2), eval::fmt(mds->planarity, 3),
                   eval::fmt(lss_rep.average_error_m, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nreading: on the complete in-range graph both do well; as edges thin\n"
      "out, shortest-path completion inflates distances and MDS degrades,\n"
      "while constrained LSS keeps working directly on the sparse subset.");
  return 0;
}
