// Ablation A6: the Section 3.2 hardware extension -- stock 88 dB buzzer vs
// the 105 dB loudspeaker, baseline vs refined (accumulating) detection.
//
// The paper: the stock sounder-microphone pair "yields a detection range of
// less than 3 m on grass"; the loudspeaker plus the refined detector extends
// the practical range roughly threefold over prior work.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/report.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

namespace {

double rate(const ranging::RangingService& service, double d, double speaker_db,
            math::Rng& rng) {
  acoustics::SpeakerUnit speaker;
  speaker.output_db = speaker_db;
  int hits = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    if (service.measure(d, speaker, acoustics::MicUnit{}, rng)) ++hits;
  }
  return 100.0 * hits / trials;
}

}  // namespace

int main() {
  bench::print_banner("Ablation A6 -- hardware extension: 88 dB stock vs 105 dB loudspeaker");
  auto refined_config = sim::grass_refined_ranging();
  refined_config.max_window_range_m = 40.0;
  auto baseline_config = refined_config;
  baseline_config.baseline = true;

  const ranging::RangingService refined(refined_config);
  const ranging::RangingService baseline(baseline_config);
  math::Rng rng(0xAB'61);

  eval::Table table({"distance", "stock+baseline", "stock+refined", "loud+baseline",
                     "loud+refined"});
  for (double d : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0}) {
    table.add_row({eval::fmt(d, 0) + " m", eval::fmt(rate(baseline, d, 88.0, rng), 0) + " %",
                   eval::fmt(rate(refined, d, 88.0, rng), 0) + " %",
                   eval::fmt(rate(baseline, d, 105.0, rng), 0) + " %",
                   eval::fmt(rate(refined, d, 105.0, rng), 0) + " %"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper shape: the stock buzzer with naive detection dies within a few\n"
      "meters of grass; accumulation (software) and the louder speaker\n"
      "(hardware) each buy range, and together give ~20 m -- the threefold\n"
      "improvement the paper claims over prior work.");
  return 0;
}
