// Figure 5: the 7x7 offset grid deployment pattern with 9 m / 10 m spacing
// between nearest neighbors.
#include <cstdio>

#include "bench_util.hpp"
#include "math/stats.hpp"
#include "sim/deployments.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figure 5 -- offset grid deployment pattern");
  const auto d = sim::offset_grid();
  std::printf("nodes: %zu\n\n", d.size());

  // ASCII plot of the layout (y flipped so north is up).
  const int width = 62;
  const int height = 32;
  std::vector<std::string> canvas(height, std::string(width, '.'));
  for (const auto& p : d.positions) {
    const int cx = static_cast<int>(p.x / 60.0 * (width - 1));
    const int cy = (height - 1) - static_cast<int>(p.y / 60.0 * (height - 1));
    canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = 'o';
  }
  for (const auto& row : canvas) std::puts(row.c_str());

  // Nearest-neighbor spacing statistics.
  std::vector<double> nearest;
  for (std::size_t i = 0; i < d.size(); ++i) {
    double best = 1e9;
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, math::distance(d.positions[i], d.positions[j]));
    }
    nearest.push_back(best);
  }
  std::printf("\nnearest-neighbor spacing: min %.2f m, max %.2f m\n",
              *math::min_value(nearest), *math::max_value(nearest));
  std::puts("paper (Fig 5): offset grid with 9 m and 10 m spacing between nearest neighbors.");
  return 0;
}
