// P1: google-benchmark microbenchmarks for the computational kernels --
// the LSS stress/gradient evaluation, the Figure 3 accumulation detector,
// the Figure 9 sliding DFT, transform estimation, and circle intersection.
#include <benchmark/benchmark.h>

#include "core/lss.hpp"
#include "core/transform_estimation.hpp"
#include "math/geometry.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/signal_detection.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

using namespace resloc;

namespace {

void BM_LssStressEvaluation(benchmark::State& state) {
  const auto town = sim::town_blocks_59();
  math::Rng rng(1);
  const auto measurements = sim::gaussian_measurements(town, {}, rng);
  core::LssOptions options;
  options.min_spacing_m = 9.0;
  std::vector<math::Vec2> positions = town.positions;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lss_stress(measurements, positions, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(measurements.edge_count()));
}
BENCHMARK(BM_LssStressEvaluation);

void BM_LssFullSolve(benchmark::State& state) {
  const auto grid = sim::offset_grid(4, 4);
  math::Rng noise(2);
  const auto measurements = sim::gaussian_measurements(grid, {}, noise);
  core::LssOptions options;
  options.min_spacing_m = 9.0;
  options.independent_inits = 1;
  options.restarts.rounds = 2;
  options.gd.max_iterations = 1500;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    math::Rng rng(++seed);
    benchmark::DoNotOptimize(core::localize_lss(measurements, options, rng));
  }
}
BENCHMARK(BM_LssFullSolve)->Unit(benchmark::kMillisecond);

void BM_DetectSignal(benchmark::State& state) {
  std::vector<std::uint8_t> samples(1100, 0);
  for (std::size_t i = 700; i < 900; ++i) samples[i] = 5;
  const ranging::DetectionParams params{2, 32, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ranging::detect_signal(samples, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1100);
}
BENCHMARK(BM_DetectSignal);

void BM_SlidingDftFilter(benchmark::State& state) {
  ranging::SlidingDftFilter filter;
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(filter.filter(x > 1000.0 ? (x = 0.0) : x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingDftFilter);

void BM_TransformClosedForm(benchmark::State& state) {
  math::Rng rng(3);
  std::vector<math::Vec2> src;
  std::vector<math::Vec2> dst;
  const math::Transform2D motion(1.0, false, {5.0, 5.0});
  for (int i = 0; i < 8; ++i) {
    src.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    dst.push_back(motion.apply(src.back()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_transform_closed_form(src, dst));
  }
}
BENCHMARK(BM_TransformClosedForm);

void BM_CircleIntersection(benchmark::State& state) {
  const math::Circle a{{0.0, 0.0}, 10.0};
  const math::Circle b{{12.0, 5.0}, 8.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::intersect(a, b));
  }
}
BENCHMARK(BM_CircleIntersection);

}  // namespace

BENCHMARK_MAIN();
