// Goertzel fast path vs the naive direct DFT: the hot-path numbers behind the
// acoustic sweep axis.
//
// Three stages of the per-pair ranging cost are timed:
//   1. single-bin tone filtering: DirectDftFilter (O(window) per sample, the
//      cost a naive per-chirp-per-pair DFT pays) against GoertzelSlidingFilter
//      (O(1) per sample), including a max |delta magnitude| equivalence check;
//   2. waveform synthesis: per-sample std::sin against the cached chirp
//      templates of WaveformSynthesizer;
//   3. the full RangingService::measure() pair loop: fresh buffers per pair
//      against one reused RangingScratch. On the hardware-detector path the
//      interval model dominates and reuse is roughly cost-neutral (the JSON
//      records the honest number); the scratch's real payoff is stage 4;
//   4. the same pair loop in software-detector mode (Section 3.7), where a
//      fresh scratch per pair also rebuilds the tone table and the Goertzel
//      detector that the reused scratch caches across pairs.
//
// Results are printed and written as JSON (default BENCH_ranging.json, or
// argv[1]) so CI can archive the perf trajectory.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "acoustics/signal_synth.hpp"
#include "bench_util.hpp"
#include "eval/aggregate.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `fn` (seconds). Best-of suppresses scheduler
/// noise without needing long runs.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    const double dt = now_s() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

volatile double g_sink = 0.0;  // keeps the timed loops from being optimized away

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ranging.json";
  bench::print_banner("Goertzel fast path vs direct DFT (acoustic sweep hot path)");

  // --- Stage 1: single-bin filtering over a long noisy capture ---
  constexpr std::size_t kSamples = 1 << 18;  // ~16 s of 16 kHz audio
  acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4300.0;
  spec.tone_amplitude = 1.0;  // unit amplitude keeps the equivalence check tight
  spec.noise_stddev = 0.45;
  math::Rng rng(0xBE2C);
  acoustics::WaveformSynthesizer synth;
  std::vector<double> wave;
  synth.synthesize_into(wave, spec, acoustics::periodic_chirps(kSamples / 420, 100, 420, 128),
                        kSamples, rng);

  const int bin = ranging::nearest_bin(spec.tone_frequency_hz, spec.sample_rate_hz,
                                       ranging::SlidingDftFilter::kWindow);
  const double direct_s = best_of(5, [&] {
    ranging::DirectDftFilter filter(ranging::SlidingDftFilter::kWindow, bin);
    double sum = 0.0;
    for (double s : wave) sum += filter.step(s);
    g_sink = sum;
  });
  const double goertzel_s = best_of(5, [&] {
    ranging::GoertzelSlidingFilter filter(ranging::SlidingDftFilter::kWindow, bin);
    double sum = 0.0;
    for (double s : wave) sum += filter.step(s);
    g_sink = sum;
  });
  const double filter_speedup = direct_s / goertzel_s;

  // Equivalence: the fast path must not drift from the direct sum.
  double max_delta = 0.0;
  {
    ranging::DirectDftFilter direct(ranging::SlidingDftFilter::kWindow, bin);
    ranging::GoertzelSlidingFilter fast(ranging::SlidingDftFilter::kWindow, bin);
    for (double s : wave) {
      const double d = std::abs(std::sqrt(direct.step(s)) - std::sqrt(fast.step(s)));
      if (d > max_delta) max_delta = d;
    }
  }

  const double per_sample_ns = 1e9 / static_cast<double>(kSamples);
  std::printf("single-bin filter, %zu samples, window %zu, bin %d\n", kSamples,
              ranging::SlidingDftFilter::kWindow, bin);
  std::printf("  direct DFT          %8.2f ns/sample\n", direct_s * per_sample_ns);
  std::printf("  Goertzel sliding    %8.2f ns/sample\n", goertzel_s * per_sample_ns);
  std::printf("  speedup             %8.2fx   (target >= 5x)\n", filter_speedup);
  std::printf("  max |delta magnitude|  %.3e  (bound 1e-9)\n", max_delta);

  // --- Stage 2: waveform synthesis (std::sin vs cached templates) ---
  const auto chirps = acoustics::periodic_chirps(64, 100, 420, 128);
  constexpr std::size_t kSynthSamples = 1 << 15;
  acoustics::WaveformSpec synth_spec;
  synth_spec.tone_frequency_hz = 4300.0;
  synth_spec.noise_stddev = 0.0;  // isolate the tone-generation cost
  const double synth_sin_s = best_of(5, [&] {
    math::Rng r(1);
    g_sink = acoustics::synthesize_waveform(synth_spec, chirps, kSynthSamples, r)[500];
  });
  std::vector<double> reuse;
  const double synth_tpl_s = best_of(5, [&] {
    math::Rng r(1);
    synth.synthesize_into(reuse, synth_spec, chirps, kSynthSamples, r);
    g_sink = reuse[500];
  });
  const double synth_speedup = synth_sin_s / synth_tpl_s;
  std::printf("\nwaveform synthesis, %zu samples, %zu chirps\n", kSynthSamples, chirps.size());
  std::printf("  per-sample std::sin %8.2f us/capture\n", synth_sin_s * 1e6);
  std::printf("  cached templates    %8.2f us/capture\n", synth_tpl_s * 1e6);
  std::printf("  speedup             %8.2fx\n", synth_speedup);

  // --- Stage 3: full ranging sequences with and without buffer reuse ---
  const ranging::RangingService service(sim::grass_refined_ranging());
  constexpr int kPairs = 150;
  const double measure_alloc_s = best_of(3, [&] {
    math::Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < kPairs; ++i) {
      const auto d = service.measure(5.0 + (i % 12), {}, {}, r);
      sum += d.value_or(0.0);
    }
    g_sink = sum;
  });
  const double measure_scratch_s = best_of(3, [&] {
    math::Rng r(7);
    ranging::RangingScratch scratch;
    double sum = 0.0;
    for (int i = 0; i < kPairs; ++i) {
      const auto d = service.measure(5.0 + (i % 12), {}, {}, r, scratch);
      sum += d.value_or(0.0);
    }
    g_sink = sum;
  });
  const double measure_speedup = measure_alloc_s / measure_scratch_s;
  std::printf("\nfull ranging sequence, %d pairs (grass refined service)\n", kPairs);
  std::printf("  fresh buffers       %8.2f us/pair\n", measure_alloc_s / kPairs * 1e6);
  std::printf("  reused scratch      %8.2f us/pair\n", measure_scratch_s / kPairs * 1e6);
  std::printf("  speedup             %8.2fx\n", measure_speedup);

  // --- Stage 4: software-detector (Section 3.7) pair loop ---
  ranging::RangingConfig sw_config = sim::grass_refined_ranging();
  sw_config.software_detector = true;
  const ranging::RangingService sw_service(sw_config);
  constexpr int kSwPairs = 40;
  const double sw_alloc_s = best_of(3, [&] {
    math::Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < kSwPairs; ++i) {
      const auto d = sw_service.measure(5.0 + (i % 12), {}, {}, r);
      sum += d.value_or(0.0);
    }
    g_sink = sum;
  });
  const double sw_scratch_s = best_of(3, [&] {
    math::Rng r(7);
    ranging::RangingScratch scratch;
    double sum = 0.0;
    for (int i = 0; i < kSwPairs; ++i) {
      const auto d = sw_service.measure(5.0 + (i % 12), {}, {}, r, scratch);
      sum += d.value_or(0.0);
    }
    g_sink = sum;
  });
  const double sw_speedup = sw_alloc_s / sw_scratch_s;
  std::printf("\nsoftware-detector sequence, %d pairs (Goertzel + tone-table cache)\n", kSwPairs);
  std::printf("  fresh buffers       %8.2f us/pair\n", sw_alloc_s / kSwPairs * 1e6);
  std::printf("  reused scratch      %8.2f us/pair\n", sw_scratch_s / kSwPairs * 1e6);
  std::printf("  speedup             %8.2fx\n", sw_speedup);

  // --- JSON record ---
  const auto v = [](double x) { return resloc::eval::format_value(x); };
  std::string json = "{\n";
  json += "  \"bench\": \"bench_ranging_goertzel\",\n";
  json += "  \"filter_samples\": " + std::to_string(kSamples) + ",\n";
  json += "  \"filter_window\": " + std::to_string(ranging::SlidingDftFilter::kWindow) + ",\n";
  json += "  \"filter_bin\": " + std::to_string(bin) + ",\n";
  json += "  \"direct_dft_ns_per_sample\": " + v(direct_s * per_sample_ns) + ",\n";
  json += "  \"goertzel_ns_per_sample\": " + v(goertzel_s * per_sample_ns) + ",\n";
  json += "  \"filter_speedup\": " + v(filter_speedup) + ",\n";
  json += "  \"max_abs_magnitude_delta\": " + v(max_delta) + ",\n";
  json += "  \"synth_sin_us_per_capture\": " + v(synth_sin_s * 1e6) + ",\n";
  json += "  \"synth_template_us_per_capture\": " + v(synth_tpl_s * 1e6) + ",\n";
  json += "  \"synth_speedup\": " + v(synth_speedup) + ",\n";
  json += "  \"measure_alloc_us_per_pair\": " + v(measure_alloc_s / kPairs * 1e6) + ",\n";
  json += "  \"measure_scratch_us_per_pair\": " + v(measure_scratch_s / kPairs * 1e6) + ",\n";
  json += "  \"measure_speedup\": " + v(measure_speedup) + ",\n";
  json += "  \"software_alloc_us_per_pair\": " + v(sw_alloc_s / kSwPairs * 1e6) + ",\n";
  json += "  \"software_scratch_us_per_pair\": " + v(sw_scratch_s / kSwPairs * 1e6) + ",\n";
  json += "  \"software_speedup\": " + v(sw_speedup) + "\n";
  json += "}\n";
  if (!resloc::eval::write_text_file(json_path, json)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nbench record: %s\n", json_path.c_str());
  return filter_speedup >= 5.0 && max_delta < 1e-9 ? 0 : 1;
}
