// Per-detector detection-offset accuracy + throughput, merged into
// BENCH_ranging.json as the "detector_accuracy" record.
//
// The fixture family is the detection-offset harness of
// tests/test_detector_accuracy.cpp at bench scale: a zero-jitter grass
// campaign config where the true arrival sample of every trial is exactly
// detection_index_for_distance(d), so |detected - true| is measurable per
// trial with no estimation step. Two acoustic scenes:
//   - clean: line-of-sight grass propagation, distances 5..20 m;
//   - echo:  a fixed deterministic reflector 10 ms (160 samples) behind the
//     direct path and 8 dB LOUDER (a focusing surface), distances 14..20 m.
//     This is the scene that separates the detectors: the hardware interval
//     model latches the strong echo (+160 samples), the Goertzel scan drifts
//     as the direct arrival weakens, and the NCC matched filter's
//     first-arrival peak picking stays on the true onset.
//
// Offsets are pooled across distances into per-detector median/p95 records;
// throughput is us/pair with a reused scratch. The exit code gates the CI
// contract: all three detectors must produce records, and the NCC median
// |offset| on the echo scene must be strictly below the Goertzel median.
//
// Run bench_ranging_goertzel FIRST: it rewrites BENCH_ranging.json from
// scratch, and this bench then merges its block into the existing file
// (replacing any previous "detector_accuracy" member).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "acoustics/environment.hpp"
#include "bench_util.hpp"
#include "eval/aggregate.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"
#include "ranging/ranging_service.hpp"
#include "ranging/tdoa.hpp"

using namespace resloc;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    const double dt = now_s() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

volatile double g_sink = 0.0;

/// Zero-jitter fixture: ground truth per trial is exactly
/// detection_index_for_distance(d), so offsets need no estimation.
ranging::RangingConfig fixture_config(ranging::DetectorMode mode, bool echo) {
  ranging::RangingConfig config;
  config.environment = acoustics::EnvironmentProfile::grass();
  config.environment.echo_rate = 0.0;
  config.environment.noise_burst_rate_hz = 0.0;
  if (echo) {
    config.environment.fixed_echo_lag_s = 0.010;          // 160 samples
    config.environment.fixed_echo_attenuation_db = -8.0;  // echo louder than direct
  }
  config.pattern.num_chirps = 10;
  config.pattern.chirp_duration_s = 0.008;
  config.pattern.tone_frequency_hz = 4300.0;
  config.detection = {2, 32, 6};
  config.max_window_range_m = 22.0;
  config.tdoa.sync_jitter_s = 0.0;
  config.channel_jitter.actuation_jitter_s = 0.0;
  config.tdoa.delta_const_true_s = config.tdoa.delta_const_calibrated_s;
  config.detector_mode = mode;
  return config;
}

struct DetectorRecord {
  double median_abs_offset = 0.0;  ///< samples; -1 when nothing detected
  double p95_abs_offset = 0.0;
  double detect_rate = 0.0;
  double us_per_pair = 0.0;
};

DetectorRecord run_scene(ranging::DetectorMode mode, bool echo,
                         const std::vector<double>& distances, int trials,
                         std::uint64_t seed) {
  const ranging::RangingConfig config = fixture_config(mode, echo);
  const ranging::RangingService service(config);
  std::vector<double> offsets;
  int attempts = 0;
  ranging::RangingScratch scratch;
  for (double d : distances) {
    const int expected = ranging::detection_index_for_distance(d, config.tdoa);
    math::Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      math::Rng stream = rng.fork(t);
      ++attempts;
      const auto attempt = service.measure_with_diagnostics(d, {}, {}, stream);
      if (!attempt.distance_m) continue;
      offsets.push_back(std::abs(static_cast<double>(attempt.detection_index - expected)));
    }
  }
  DetectorRecord record;
  record.detect_rate =
      attempts > 0 ? static_cast<double>(offsets.size()) / attempts : 0.0;
  record.median_abs_offset = offsets.empty() ? -1.0 : *math::median(std::vector<double>(offsets));
  record.p95_abs_offset = offsets.empty() ? -1.0 : *math::percentile(offsets, 95.0);

  // Throughput: the mid-fixture distance with a reused scratch, best-of-3.
  constexpr int kTimedPairs = 30;
  const double mid = distances[distances.size() / 2];
  const double elapsed = best_of(3, [&] {
    math::Rng r(seed ^ 0x7157);
    double sum = 0.0;
    for (int i = 0; i < kTimedPairs; ++i) {
      const auto est = service.measure(mid, {}, {}, r, scratch);
      sum += est.value_or(0.0);
    }
    g_sink = sum;
  });
  record.us_per_pair = elapsed / kTimedPairs * 1e6;
  return record;
}

/// Removes an existing `"detector_accuracy": { ... }` member (plus the comma
/// that precedes it) from a JSON object body by brace counting.
std::string strip_detector_accuracy(std::string json) {
  const std::size_t key = json.find("\"detector_accuracy\"");
  if (key == std::string::npos) return json;
  std::size_t begin = key;
  // Swallow the separating comma and whitespace before the key.
  while (begin > 0 && (json[begin - 1] == ' ' || json[begin - 1] == '\n' ||
                       json[begin - 1] == ',')) {
    --begin;
  }
  std::size_t open = json.find('{', key);
  if (open == std::string::npos) return json;
  int depth = 0;
  std::size_t end = open;
  for (; end < json.size(); ++end) {
    if (json[end] == '{') ++depth;
    if (json[end] == '}' && --depth == 0) break;
  }
  if (end >= json.size()) return json;
  json.erase(begin, end + 1 - begin);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ranging.json";
  bench::print_banner("Detector accuracy: detection offset per mode, clean vs fixed echo");

  const std::vector<double> clean_distances = {5.0, 10.0, 15.0, 20.0};
  const std::vector<double> echo_distances = {14.0, 16.0, 18.0, 20.0};
  constexpr int kTrials = 40;
  constexpr std::uint64_t kCleanSeed = 0xF00D;
  constexpr std::uint64_t kEchoSeed = 0xBEEF;

  const std::vector<std::pair<std::string, ranging::DetectorMode>> modes = {
      {"hardware", ranging::DetectorMode::kHardware},
      {"goertzel", ranging::DetectorMode::kGoertzel},
      {"ncc", ranging::DetectorMode::kMatchedFilter},
  };

  const auto v = [](double x) { return resloc::eval::format_value(x); };
  std::string block = "  \"detector_accuracy\": {\n";
  block += "    \"trials_per_distance\": " + std::to_string(kTrials) + ",\n";
  block += "    \"echo_lag_samples\": 160,\n";
  block += "    \"echo_attenuation_db\": -8,\n";

  double ncc_echo_median = -1.0;
  double goertzel_echo_median = -1.0;
  std::size_t records = 0;
  for (const bool echo : {false, true}) {
    const auto& distances = echo ? echo_distances : clean_distances;
    const std::uint64_t seed = echo ? kEchoSeed : kCleanSeed;
    std::printf("%s scene (%d trials x %zu distances)\n", echo ? "echo" : "clean",
                kTrials, distances.size());
    block += std::string("    \"") + (echo ? "echo" : "clean") + "\": {\n";
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const DetectorRecord r = run_scene(modes[m].second, echo, distances, kTrials, seed);
      std::printf("  %-8s median|off| %7.1f  p95 %7.1f  detect %5.1f%%  %8.2f us/pair\n",
                  modes[m].first.c_str(), r.median_abs_offset, r.p95_abs_offset,
                  r.detect_rate * 100.0, r.us_per_pair);
      block += "      \"" + modes[m].first + "\": {";
      block += "\"median_abs_offset_samples\": " + v(r.median_abs_offset) + ", ";
      block += "\"p95_abs_offset_samples\": " + v(r.p95_abs_offset) + ", ";
      block += "\"detect_rate\": " + v(r.detect_rate) + ", ";
      block += "\"us_per_pair\": " + v(r.us_per_pair) + "}";
      block += m + 1 < modes.size() ? ",\n" : "\n";
      if (r.median_abs_offset >= 0.0) ++records;
      if (echo && modes[m].first == "ncc") ncc_echo_median = r.median_abs_offset;
      if (echo && modes[m].first == "goertzel") goertzel_echo_median = r.median_abs_offset;
    }
    block += echo ? "    }\n" : "    },\n";
  }
  block += "  }";

  const bool all_records = records == 2 * modes.size();
  const bool ncc_beats_goertzel =
      ncc_echo_median >= 0.0 && goertzel_echo_median >= 0.0 &&
      ncc_echo_median < goertzel_echo_median;
  std::printf("\nncc echo median %.1f vs goertzel %.1f samples (gate: strictly less)\n",
              ncc_echo_median, goertzel_echo_median);

  // Merge into the existing BENCH_ranging.json (or start a fresh object).
  std::string existing;
  {
    std::ifstream in(json_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = strip_detector_accuracy(buf.str());
    }
  }
  std::string json;
  const std::size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    json = existing.substr(0, close);
    while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) json.pop_back();
    json += ",\n" + block + "\n}\n";
  } else {
    json = "{\n" + block + "\n}\n";
  }
  if (!resloc::eval::write_text_file(json_path, json)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("bench record merged into: %s\n", json_path.c_str());
  return all_records && ncc_beats_goertzel ? 0 : 1;
}
