// Telemetry overhead on the survey-density fixture, measured and gated.
//
// The obs layer's cost contract (src/obs/telemetry.hpp) has two halves:
//   1. Disabled (the default), a span is one relaxed atomic load + branch.
//      Gate: < 2% of the survey-density campaign. Measured as a tight
//      microbench of the disabled RESLOC_SPAN cost multiplied by the
//      campaign's spans-per-measure ratio -- a single binary cannot compare
//      against an uninstrumented build, but cost-per-span x spans-per-unit
//      bounds the same quantity without needing one.
//   2. Enabled (--trace/--metrics), a span is two clock reads plus two
//      thread-local array updates. Gate: < 10%, measured directly as the
//      end-to-end enabled/disabled wall-time ratio of the same campaign.
//
// The third gate is the attribution claim ISSUE 7 / ROADMAP item 1 rest on:
// the named sub-stage spans (synthesis/channel/detection) must account for
// >= 90% of ranging/measure wall time, so the ~110 us/pair budget is a
// measured stage breakdown rather than a hypothesis.
//
// Results are printed and written as JSON (default BENCH_obs.json, or
// argv[1]); a failed gate exits nonzero so CI blocks on regressions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "eval/aggregate.hpp"
#include "math/rng.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

volatile std::size_t g_sink = 0;

/// Disabled-mode span cost: a tight loop over RESLOC_SPAN with telemetry
/// off. The SpanScope destructor is out of line, so the compiler cannot
/// elide the scope even though it records nothing.
double disabled_span_cost_ns(std::size_t iterations) {
  const double t0 = now_s();
  for (std::size_t i = 0; i < iterations; ++i) {
    RESLOC_SPAN("bench/noop");
    g_sink = i;
  }
  return (now_s() - t0) * 1e9 / static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  bench::print_banner("Telemetry overhead on the survey-density campaign");

  // The survey-density fixture: the same uniform_n + grass campaign
  // bench_campaign_scale's e2e points use, at n = 100 so a rep is ~0.3 s.
  math::Rng deploy_rng(0xAC5 + 100);
  sim::ScenarioParams params;
  params.node_count = 100;
  const core::Deployment deployment = sim::build_scenario("uniform_n", params, deploy_rng);
  const sim::FieldExperimentConfig config = sim::grass_campaign_config();

  const auto campaign = [&] {
    math::Rng rng(7);
    const auto data = sim::run_field_experiment(deployment, config, rng);
    g_sink = data.samples.size();
  };
  const int reps = 9;

  // --- End to end: telemetry off (the default production mode) vs fully on
  // (counters + stage totals + retained span events, the --trace
  // configuration). The overhead is a few percent of a ~0.2 s campaign, well
  // under this box's wall-clock noise, so the estimator has to be noise-
  // hardened: off and on samples are interleaved (each timing 2 campaigns),
  // the off/on ratio is formed per adjacent pair -- machine-speed drift
  // hits both halves of a pair alike and cancels in the ratio, where timing
  // all-off-then-all-on lets a drift between the phases masquerade as
  // overhead several times the real effect -- and the reported overhead is
  // the median ratio across pairs, immune to a co-tenant burst landing in
  // any one sample.
  constexpr int kCampaignsPerSample = 2;
  obs::set_enabled(true);  // pays the one-time TSC calibration before timing
  obs::reset();
  std::vector<double> disabled_samples, enabled_samples, ratios;
  for (int r = 0; r < reps; ++r) {
    obs::set_enabled(false);
    obs::set_capture_spans(false);
    double t0 = now_s();
    for (int c = 0; c < kCampaignsPerSample; ++c) campaign();
    const double d = now_s() - t0;
    obs::set_enabled(true);
    obs::set_capture_spans(true);
    t0 = now_s();
    for (int c = 0; c < kCampaignsPerSample; ++c) campaign();
    const double e = now_s() - t0;
    disabled_samples.push_back(d);
    enabled_samples.push_back(e);
    ratios.push_back(e / d);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double disabled_s = median(disabled_samples) / kCampaignsPerSample;
  const double enabled_s = median(enabled_samples) / kCampaignsPerSample;
  const double enabled_overhead = median(ratios) - 1.0;

  // The instrumented runs also yield the stage attribution and the
  // spans-per-measure ratio (counts are deterministic; reps just repeat them).
  const obs::TelemetrySnapshot snap = obs::snapshot();
  obs::set_enabled(false);
  obs::set_capture_spans(false);

  // The counters accumulated over every enabled campaign; per-measure stage
  // averages divide by the accumulated count, per-campaign quantities by the
  // per-run count.
  const std::uint64_t measures = snap.counter(obs::Counter::kMeasureCalls);
  const std::uint64_t measures_per_run =
      measures / static_cast<std::uint64_t>(reps * kCampaignsPerSample);
  std::uint64_t total_spans = 0;
  for (const obs::StageTotal& t : snap.stage_totals) total_spans += t.count;
  const double spans_per_measure =
      measures > 0 ? static_cast<double>(total_spans) / static_cast<double>(measures) : 0.0;

  const double measure_ns = snap.stage_total_ns("ranging/measure") > 0
                                ? static_cast<double>(snap.stage_total_ns("ranging/measure")) /
                                      static_cast<double>(measures)
                                : 0.0;
  // Attribution is computed over whatever kernel-stage spans the measure path
  // actually emitted: every "ranging/*" span except the enclosing
  // "ranging/measure" itself and the campaign-level "ranging/filtering". The
  // block-DSP and per-sample paths emit different stage taxonomies
  // (ranging/synthesis/noise vs ranging/synthesis, ...); enumerating the
  // snapshot keeps the >= 90% claim honest for both without hardcoding either.
  std::vector<std::pair<std::string, std::uint64_t>> stages;
  std::uint64_t attributed_total_ns = 0;
  for (std::size_t i = 0; i < snap.span_names.size() && i < snap.stage_totals.size(); ++i) {
    const std::string& name = snap.span_names[i];
    if (name.rfind("ranging/", 0) != 0) continue;
    if (name == "ranging/measure" || name == "ranging/filtering") continue;
    if (snap.stage_totals[i].count == 0) continue;
    stages.emplace_back(name, snap.stage_totals[i].total_ns);
    attributed_total_ns += snap.stage_totals[i].total_ns;
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  const double attribution =
      snap.stage_total_ns("ranging/measure") > 0
          ? static_cast<double>(attributed_total_ns) /
                static_cast<double>(snap.stage_total_ns("ranging/measure"))
          : 0.0;

  // --- Disabled per-span cost, then the campaign-level bound. ---
  const double span_ns = disabled_span_cost_ns(20'000'000);
  const double disabled_measure_ns =
      static_cast<double>(disabled_s) * 1e9 / static_cast<double>(measures_per_run);
  const double disabled_overhead = span_ns * spans_per_measure / disabled_measure_ns;

  std::printf("survey-density fixture: uniform_n n = 100, grass campaign, %llu measures\n\n",
              static_cast<unsigned long long>(measures_per_run));
  std::printf("  e2e telemetry off        %8.3f s\n", disabled_s);
  std::printf("  e2e telemetry on         %8.3f s   (spans + counters + trace events)\n",
              enabled_s);
  std::printf("  enabled overhead         %8.2f %%  (gate < 10%%)\n", enabled_overhead * 100.0);
  std::printf("  disabled span cost       %8.2f ns  x %.1f spans/measure\n", span_ns,
              spans_per_measure);
  std::printf("  disabled overhead bound  %8.3f %%  (gate < 2%%)\n", disabled_overhead * 100.0);
  std::printf("  measure stage budget     %8.2f us/measure (enabled run)\n", measure_ns / 1e3);
  std::printf("  stage attribution        %8.1f %%  of measure time in named kernel stages\n"
              "                                       (all ranging/* sub-spans; gate >= 90%%)\n",
              attribution * 100.0);
  for (const auto& [name, total_ns] : stages) {
    std::printf("    %-30s %8.2f us/measure\n", name.c_str(),
                static_cast<double>(total_ns) / static_cast<double>(measures) / 1e3);
  }

  // --- JSON record ---
  const auto v = [](double x) { return resloc::eval::format_value(x); };
  std::string json = "{\n";
  json += "  \"bench\": \"bench_obs_overhead\",\n";
  json += "  \"fixture\": {\"scenario\": \"uniform_n\", \"n\": 100, "
          "\"campaign\": \"grass\", \"measures\": " +
          std::to_string(measures_per_run) + "},\n";
  json += "  \"e2e_disabled_s\": " + v(disabled_s) + ",\n";
  json += "  \"e2e_enabled_s\": " + v(enabled_s) + ",\n";
  json += "  \"enabled_overhead_fraction\": " + v(enabled_overhead) + ",\n";
  json += "  \"disabled_span_cost_ns\": " + v(span_ns) + ",\n";
  json += "  \"spans_per_measure\": " + v(spans_per_measure) + ",\n";
  json += "  \"disabled_overhead_fraction\": " + v(disabled_overhead) + ",\n";
  json += "  \"measure_us_per_pair_enabled\": " + v(measure_ns / 1e3) + ",\n";
  json += "  \"stage_us_per_measure\": {";
  bool first = true;
  for (const auto& [name, total_ns] : stages) {
    json += first ? "" : ", ";
    first = false;
    json += "\"" + name + "\": " +
            v(static_cast<double>(total_ns) / static_cast<double>(measures) / 1e3);
  }
  json += first ? "" : ", ";
  json += "\"ranging/filtering\": " +
          v(static_cast<double>(snap.stage_total_ns("ranging/filtering")) /
            static_cast<double>(measures) / 1e3);
  json += "},\n";
  json += "  \"measure_stage_attribution\": " + v(attribution) + ",\n";
  json += "  \"gates\": {\"disabled_overhead_max\": 0.02, \"enabled_overhead_max\": 0.10, "
          "\"attribution_min\": 0.90}\n";
  json += "}\n";
  if (!resloc::eval::write_text_file(json_path, json)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nbench record: %s\n", json_path.c_str());

  const bool ok =
      disabled_overhead < 0.02 && enabled_overhead < 0.10 && attribution >= 0.90;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: disabled overhead %.3f%% (< 2%%), enabled overhead %.2f%% (< 10%%), "
                 "attribution %.1f%% (>= 90%%)\n",
                 disabled_overhead * 100.0, enabled_overhead * 100.0, attribution * 100.0);
  }
  return ok ? 0 : 1;
}
