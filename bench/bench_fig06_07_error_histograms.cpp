// Figures 6 and 7: ranging error histograms for the refined service on the
// 46-node grass grid -- all raw measurements (Fig 6) and bidirectionally
// confirmed pairs only (Fig 7).
//
// Paper-reported shape: an approximately zero-mean bell within +/-30 cm, a
// right-leaning cluster of over-estimates outside it, and rare large errors
// (up to ~11 m) that the bidirectional consistency check eliminates.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/metrics.hpp"
#include "math/histogram.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 6 & 7 -- grass-grid ranging error histograms");
  const auto scenario = sim::grass_grid_scenario(0xF16'06, /*rounds=*/3);
  std::printf("deployment: %zu nodes; raw measurements: %zu\n\n",
              scenario.deployment.size(), scenario.data.samples.size());

  // --- Figure 6: raw errors ---
  const auto errors = scenario.data.raw_errors();
  math::Histogram hist(-2.0, 2.0, 40);
  hist.add_all(errors);
  std::puts("Figure 6 -- raw error histogram (meters):");
  std::fputs(hist.to_ascii(48).c_str(), stdout);
  const auto raw = eval::summarize_ranging_errors(errors);
  std::printf("within +/-30 cm: %.1f %%   max |error|: %.2f m   outliers >1 m: %zu\n",
              100.0 * raw.within_30cm_fraction, raw.max_abs_m,
              raw.underestimates_beyond_1m + raw.overestimates_beyond_1m);
  std::puts("paper (Fig 6): zero-mean bell within +/-30 cm; outliers to ~11 m.");

  // --- Figure 7: bidirectional pairs only ---
  ranging::FilterPolicy policy;  // default auto median/mode
  const auto bidir = scenario.data.raw.bidirectional_only(policy, 1.0);
  std::vector<double> bidir_errors;
  for (const auto& pair : bidir) {
    const double true_d = math::distance(scenario.deployment.positions[pair.a],
                                         scenario.deployment.positions[pair.b]);
    bidir_errors.push_back(pair.distance_m - true_d);
  }
  math::Histogram bidir_hist(-2.0, 2.0, 40);
  bidir_hist.add_all(bidir_errors);
  std::puts("\nFigure 7 -- bidirectionally-confirmed pairs only:");
  std::fputs(bidir_hist.to_ascii(48).c_str(), stdout);
  const auto filtered = eval::summarize_ranging_errors(bidir_errors);
  std::printf("pairs: %zu   max |error|: %.2f m   outliers >1 m: %zu\n", filtered.count,
              filtered.max_abs_m,
              filtered.underestimates_beyond_1m + filtered.overestimates_beyond_1m);
  std::puts(
      "paper (Fig 7): the large-magnitude errors disappear; a small right\n"
      "(over-estimation) cluster remains from late detections.");
  return 0;
}
