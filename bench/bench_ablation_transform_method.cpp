// Ablation A4: the two transform-estimation methods of Section 4.3.1 --
// exact minimization over (theta, tx, ty, f) versus the closed-form
// centroid/covariance method the paper recommends for motes.
//
// Paper's claim: the closed form is "slightly less accurate, but
// computationally tractable". We measure both accuracy (residual vs noise)
// and wall time.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/transform_estimation.hpp"
#include "eval/report.hpp"
#include "math/rng.hpp"

using namespace resloc;
using resloc::math::Vec2;

int main() {
  bench::print_banner("Ablation A4 -- exact vs closed-form transform estimation");
  math::Rng rng(0xAB'41);

  eval::Table table({"shared pts", "noise (m)", "exact RMSE", "closed RMSE", "exact us/call",
                     "closed us/call"});
  for (const std::size_t count : {3u, 5u, 10u}) {
    for (const double noise : {0.0, 0.1, 0.5}) {
      double exact_rmse = 0.0;
      double closed_rmse = 0.0;
      double exact_us = 0.0;
      double closed_us = 0.0;
      const int trials = 20;
      for (int trial = 0; trial < trials; ++trial) {
        std::vector<Vec2> src;
        for (std::size_t i = 0; i < count; ++i) {
          src.push_back({rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0)});
        }
        const math::Transform2D motion(rng.uniform(-3.1, 3.1), rng.bernoulli(0.5),
                                       {rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)});
        std::vector<Vec2> dst;
        for (const Vec2& p : src) {
          dst.push_back(motion.apply(p) +
                        Vec2{rng.gaussian(0.0, noise), rng.gaussian(0.0, noise)});
        }

        const auto t0 = std::chrono::steady_clock::now();
        const auto exact = core::estimate_transform_exact(src, dst, rng);
        const auto t1 = std::chrono::steady_clock::now();
        const auto closed = core::estimate_transform_closed_form(src, dst);
        const auto t2 = std::chrono::steady_clock::now();

        exact_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        closed_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
        exact_rmse += std::sqrt(exact.sum_squared_error / static_cast<double>(count));
        closed_rmse += std::sqrt(closed.sum_squared_error / static_cast<double>(count));
      }
      table.add_row({std::to_string(count), eval::fmt(noise, 1),
                     eval::fmt(exact_rmse / trials, 4), eval::fmt(closed_rmse / trials, 4),
                     eval::fmt(exact_us / trials, 1), eval::fmt(closed_us / trials, 1)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper shape: both methods fit equally well (the closed form solves the\n"
      "same least-squares problem optimally); the closed form is orders of\n"
      "magnitude cheaper -- the right choice for resource-constrained motes.");
  return 0;
}
