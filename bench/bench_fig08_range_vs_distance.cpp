// Figure 8: ideal, measured, and filtered acoustic ranging measurements
// versus actual distance on the grassy field.
//
// Paper-reported shape: measurements track the ideal line closely at short
// range; large-magnitude errors become more common at longer distances (SNR
// deterioration plus the longer false-detection window).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "eval/report.hpp"
#include "math/stats.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figure 8 -- ranging estimate vs actual distance (grass)");
  const auto scenario = sim::grass_grid_scenario(0xF16'08, /*rounds=*/3);

  ranging::FilterPolicy policy;
  const auto filtered_pairs = scenario.data.raw.symmetric_estimates(policy, 1.0);

  eval::Table table({"actual (m)", "raw n", "raw mean", "raw |e|>1m", "filt n", "filt mean",
                     "filt |e|>1m"});
  for (double lo = 8.0; lo < 22.0; lo += 2.0) {
    std::vector<double> raw_err;
    std::vector<double> filt_err;
    for (const auto& s : scenario.data.samples) {
      if (s.true_distance_m < lo || s.true_distance_m >= lo + 2.0) continue;
      raw_err.push_back(s.measured_m - s.true_distance_m);
    }
    for (const auto& p : filtered_pairs) {
      const double true_d = math::distance(scenario.deployment.positions[p.a],
                                           scenario.deployment.positions[p.b]);
      if (true_d < lo || true_d >= lo + 2.0) continue;
      filt_err.push_back(p.distance_m - true_d);
    }
    const auto big = [](const std::vector<double>& v) {
      std::size_t n = 0;
      for (double e : v) {
        if (std::abs(e) > 1.0) ++n;
      }
      return n;
    };
    char bin[32];
    std::snprintf(bin, sizeof bin, "%4.0f-%-4.0f", lo, lo + 2.0);
    table.add_row({bin, std::to_string(raw_err.size()), eval::fmt(math::mean(raw_err)),
                   std::to_string(big(raw_err)), std::to_string(filt_err.size()),
                   eval::fmt(math::mean(filt_err)), std::to_string(big(filt_err))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper (Fig 8): large-magnitude errors occur more frequently at longer\n"
      "distances; filtering (median + bidirectional) removes most of them.");
  return 0;
}
